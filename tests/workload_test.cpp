#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::graph;
namespace wl = xheal::workload;
using xheal::util::Rng;

TEST(Workload, PathShape) {
    auto g = wl::make_path(10);
    EXPECT_EQ(g.node_count(), 10u);
    EXPECT_EQ(g.edge_count(), 9u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(5), 2u);
    EXPECT_TRUE(is_connected(g));
}

TEST(Workload, CycleShape) {
    auto g = wl::make_cycle(10);
    EXPECT_EQ(g.edge_count(), 10u);
    for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Workload, StarShape) {
    auto g = wl::make_star(9);
    EXPECT_EQ(g.node_count(), 10u);
    EXPECT_EQ(g.degree(0), 9u);
    EXPECT_EQ(g.degree(3), 1u);
}

TEST(Workload, CompleteShape) {
    auto g = wl::make_complete(7);
    EXPECT_EQ(g.edge_count(), 21u);
    for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Workload, GridShape) {
    auto g = wl::make_grid(3, 4);
    EXPECT_EQ(g.node_count(), 12u);
    EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // rows*(cols-1) + cols*(rows-1)
    EXPECT_TRUE(is_connected(g));
}

TEST(Workload, TorusIsFourRegular) {
    auto g = wl::make_torus(4, 5);
    for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), 4u);
    EXPECT_TRUE(is_connected(g));
}

TEST(Workload, HypercubeShape) {
    auto g = wl::make_hypercube(4);
    EXPECT_EQ(g.node_count(), 16u);
    for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), 4u);
    EXPECT_EQ(diameter_exact(g), std::optional<std::size_t>{4});
}

TEST(Workload, BinaryTreeShape) {
    auto g = wl::make_binary_tree(15);
    EXPECT_EQ(g.edge_count(), 14u);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.degree(0), 2u);   // root
    EXPECT_EQ(g.degree(14), 1u);  // leaf
}

TEST(Workload, ErdosRenyiConnected) {
    Rng rng(3);
    auto g = wl::make_erdos_renyi(40, 0.12, rng);
    EXPECT_EQ(g.node_count(), 40u);
    EXPECT_TRUE(is_connected(g));
}

TEST(Workload, RandomRegularIsRegularAndSimple) {
    Rng rng(4);
    for (std::size_t d : {3u, 4u, 6u}) {
        auto g = wl::make_random_regular(30, d, rng);
        for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), d);
        EXPECT_EQ(g.edge_count(), 30u * d / 2);
        EXPECT_TRUE(is_connected(g));
    }
}

TEST(Workload, RandomRegularOddProductRejected) {
    Rng rng(5);
    EXPECT_THROW(wl::make_random_regular(7, 3, rng), xheal::util::ContractViolation);
}

TEST(Workload, BarabasiAlbertShape) {
    Rng rng(6);
    auto g = wl::make_barabasi_albert(50, 3, rng);
    EXPECT_EQ(g.node_count(), 50u);
    // Seed clique C(4,2)=6 edges + 46 new nodes * 3 edges.
    EXPECT_EQ(g.edge_count(), 6u + 46u * 3u);
    EXPECT_TRUE(is_connected(g));
    // Newcomers have degree >= m = 3.
    for (NodeId v : g.nodes()) EXPECT_GE(g.degree(v), 3u);
}

TEST(Workload, BarabasiAlbertHasHubs) {
    Rng rng(7);
    auto g = wl::make_barabasi_albert(200, 2, rng);
    // Preferential attachment produces a hub far above the minimum degree.
    EXPECT_GE(g.max_degree(), 12u);
}

TEST(Workload, DumbbellShape) {
    auto g = wl::make_dumbbell(5);
    EXPECT_EQ(g.node_count(), 10u);
    EXPECT_EQ(g.edge_count(), 2u * 10u + 1u);
    EXPECT_TRUE(is_connected(g));
}

TEST(Workload, PetersenShape) {
    auto g = wl::make_petersen();
    EXPECT_EQ(g.node_count(), 10u);
    EXPECT_EQ(g.edge_count(), 15u);
    for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), 3u);
    EXPECT_EQ(diameter_exact(g), std::optional<std::size_t>{2});
}

TEST(Workload, HGraphProjectionShape) {
    Rng rng(8);
    auto g = wl::make_hgraph_graph(50, 3, rng);
    EXPECT_EQ(g.node_count(), 50u);
    EXPECT_TRUE(is_connected(g));
    for (NodeId v : g.nodes()) {
        EXPECT_GE(g.degree(v), 2u);
        EXPECT_LE(g.degree(v), 6u);
    }
}

TEST(Workload, GeneratorsAreDeterministic) {
    Rng a(99), b(99);
    auto g1 = wl::make_erdos_renyi(20, 0.3, a);
    auto g2 = wl::make_erdos_renyi(20, 0.3, b);
    EXPECT_EQ(g1.edge_count(), g2.edge_count());
    g1.for_each_edge([&](NodeId u, NodeId v, const EdgeClaims&) {
        EXPECT_TRUE(g2.has_edge(u, v));
    });
}

}  // namespace
