// Statistical tests for the grammar-v2 schedule machinery: the parsed
// numbers must MEAN what they say, not just round-trip.
//
//   - A composite deleter's realized member frequencies must match its
//     configured weights (chi-square goodness of fit).
//   - A delete_fraction=a..b ramp's realized per-window deletion rate must
//     track the linear schedule within sampling tolerance.
//
// Both tests run on fixed seeds, so they are deterministic — the
// thresholds are chosen for the 99.9th percentile of the respective null
// distributions, documenting the intent, not absorbing flakiness.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "core/session.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

/// A large no-heal session: picks never run dry and cost nothing.
core::HealingSession make_pick_session(std::size_t n) {
    util::Rng rng(5);
    return core::HealingSession(workload::make_random_regular(n, 4, rng),
                                std::make_unique<baseline::NoHealHealer>());
}

}  // namespace

TEST(CompositeDeleterStats, RealizedMixtureMatchesWeightsChiSquare) {
    // Weights 5:3:2 over three member strategies. The members themselves
    // are irrelevant to the draw (selection happens before delegation), so
    // three RandomDeletions keep the test about the mixture alone.
    const std::vector<double> weights = {0.5, 0.3, 0.2};
    std::vector<adversary::CompositeDeletion::Member> members;
    for (double w : weights)
        members.push_back({std::make_unique<adversary::RandomDeletion>(), w});
    adversary::CompositeDeletion composite(std::move(members));

    auto session = make_pick_session(256);
    util::Rng rng(1234);
    const std::size_t picks = 6000;
    for (std::size_t i = 0; i < picks; ++i) {
        ASSERT_NE(composite.pick(session, rng), graph::invalid_node);
    }

    const auto& counts = composite.pick_counts();
    ASSERT_EQ(counts.size(), weights.size());
    std::size_t total = 0;
    for (std::size_t c : counts) total += c;
    EXPECT_EQ(total, picks);

    double chi2 = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        double expected = static_cast<double>(picks) * weights[i];
        double diff = static_cast<double>(counts[i]) - expected;
        chi2 += diff * diff / expected;
    }
    // dof = 2; chi-square 99.9th percentile = 13.82. A wrong cumulative
    // table (e.g. swapped or unnormalized weights) lands in the hundreds.
    EXPECT_LT(chi2, 13.82) << "counts: " << counts[0] << "/" << counts[1] << "/"
                           << counts[2];
}

TEST(CompositeDeleterStats, UnbalancedMixtureStillReachesEveryMember) {
    // A 97:3 mixture must still exercise the rare member — the cumulative
    // table's last entry is pinned to 1.0, so no member is unreachable.
    std::vector<adversary::CompositeDeletion::Member> members;
    members.push_back({std::make_unique<adversary::RandomDeletion>(), 97.0});
    members.push_back({std::make_unique<adversary::MaxDegreeDeletion>(), 3.0});
    adversary::CompositeDeletion composite(std::move(members));

    auto session = make_pick_session(128);
    util::Rng rng(42);
    for (std::size_t i = 0; i < 2000; ++i) composite.pick(session, rng);
    EXPECT_GT(composite.pick_counts()[0], composite.pick_counts()[1]);
    EXPECT_GT(composite.pick_counts()[1], 20u);  // E = 60, sd ~ 7.6
}

TEST(RampStats, EmpiricalDeleteRateTracksTheLinearSchedule) {
    // One long ramp 0.2 -> 0.8 over 2000 steps against a no-heal baseline
    // on a large population: the min_nodes floor is never near, so every
    // delete coin that lands is realized as a delete event and the
    // realized per-window rate estimates the schedule directly.
    auto spec = scenario::ScenarioSpec::parse(R"(
name ramp-stats
seed 77
topology random-regular n=1200 d=4
healer no-heal
phase ramp steps=2000 delete_fraction=0.2..0.8 deleter=random inserter=random-attach k=3 min_nodes=16
)");
    auto result = scenario::ScenarioRunner(spec).run();

    // Bucket the event stream into 8 windows of 250 steps. Every step
    // carries exactly one event here (deletes never starve with n >> 1 and
    // blocked deletes would fall through to inserts).
    const std::size_t steps = 2000, windows = 8, window = steps / windows;
    std::vector<std::size_t> deletes(windows, 0), events(windows, 0);
    for (const auto& e : result.events) {
        std::size_t w = e.step / window;
        ASSERT_LT(w, windows);
        ++events[w];
        if (e.kind == scenario::TraceEvent::Kind::remove) ++deletes[w];
    }

    const auto& phase = spec.phases[0];
    for (std::size_t w = 0; w < windows; ++w) {
        ASSERT_EQ(events[w], window);  // one event per step, none skipped
        double realized =
            static_cast<double>(deletes[w]) / static_cast<double>(events[w]);
        // Expected rate at the window midpoint; the schedule is linear so
        // the window average equals the midpoint value.
        double expected = phase.delete_fraction_at(w * window + window / 2);
        // Binomial sd at p=0.5, n=250 is 0.032; 0.11 is ~3.5 sigma and the
        // windows are independent draws of the master stream.
        EXPECT_NEAR(realized, expected, 0.11)
            << "window " << w << ": " << deletes[w] << "/" << events[w];
    }

    // The ramp's global shape: the last window deletes far more often than
    // the first (a constant-fraction bug would fail this even if every
    // window sneaks under the tolerance).
    EXPECT_GT(deletes[windows - 1], deletes[0] + 60);
}

TEST(RampStats, ConstantFractionPhasesAreUntouchedByTheRampMachinery) {
    // A constant-fraction control on the same seed/topology: realized rate
    // sits near the constant in every window (regression guard against
    // delete_fraction_at accidentally ramping the plain form).
    auto spec = scenario::ScenarioSpec::parse(R"(
name flat-stats
seed 77
topology random-regular n=1200 d=4
healer no-heal
phase flat steps=2000 delete_fraction=0.5 deleter=random inserter=random-attach k=3 min_nodes=16
)");
    auto result = scenario::ScenarioRunner(spec).run();

    const std::size_t steps = 2000, windows = 4, window = steps / windows;
    std::vector<std::size_t> deletes(windows, 0);
    for (const auto& e : result.events)
        if (e.kind == scenario::TraceEvent::Kind::remove) ++deletes[e.step / window];
    for (std::size_t w = 0; w < windows; ++w) {
        double realized = static_cast<double>(deletes[w]) / static_cast<double>(window);
        EXPECT_NEAR(realized, 0.5, 0.08) << "window " << w;
    }
}
