// EXPERIMENT PRELIM (paper Preliminaries, Section 1.1): why the Cheeger
// constant — not raw edge expansion — governs mixing.
//
//   "consider a constant degree expander of n nodes and partition the
//    vertex set into two equal parts. Make each of the parts a clique.
//    This graph has expansion at least a constant, but its conductance is
//    O(1/n). Thus while the expander has logarithmic mixing time, the
//    modified graph has polynomial mixing time."
//
// We build exactly that pair of graphs across sizes and measure h, phi,
// lambda2 and the lazy-random-walk mixing time.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/random_walk.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

/// The paper's modified graph: a 4-regular random expander plus a clique
/// on each half of the vertex set.
graph::Graph make_cliqued_expander(std::size_t n, util::Rng& rng) {
    graph::Graph g = workload::make_random_regular(n, 4, rng);
    std::size_t half = n / 2;
    for (std::size_t i = 0; i < half; ++i)
        for (std::size_t j = i + 1; j < half; ++j) {
            g.add_black_edge(static_cast<graph::NodeId>(i), static_cast<graph::NodeId>(j));
            g.add_black_edge(static_cast<graph::NodeId>(half + i),
                             static_cast<graph::NodeId>(half + j));
        }
    return g;
}

}  // namespace

int main() {
    bench::experiment_header(
        "PRELIM",
        "two-clique expander: h constant but phi = O(1/n) => polynomial mixing; "
        "plain expander mixes in O(log n)");

    util::Rng rng(97);
    util::Table table({"graph", "n", "h~", "phi~", "lambda2", "mixing time"});

    std::vector<double> ns, mix_expander, mix_cliqued, phi_cliqued;
    bool measurements_ok = true;
    for (std::size_t n : {16u, 24u, 32u, 48u, 64u, 96u}) {
        auto expander = workload::make_random_regular(n, 4, rng);
        auto cliqued = make_cliqued_expander(n, rng);

        auto t_exp = spectral::mixing_time(expander, 0, 0.05, 500000);
        auto t_cli = spectral::mixing_time(cliqued, 0, 0.05, 500000);
        measurements_ok = measurements_ok && t_exp.has_value() && t_cli.has_value();

        double h_exp = spectral::edge_expansion_estimate(expander);
        double h_cli = spectral::edge_expansion_estimate(cliqued);
        double phi_exp = spectral::cheeger_estimate(expander);
        double phi_cli = spectral::cheeger_estimate(cliqued);

        table.row()
            .add("expander4")
            .add(n)
            .add(h_exp, 3)
            .add(phi_exp, 4)
            .add(spectral::lambda2(expander), 4)
            .add(t_exp.has_value() ? std::to_string(*t_exp) : "-");
        table.row()
            .add("two-clique")
            .add(n)
            .add(h_cli, 3)
            .add(phi_cli, 4)
            .add(spectral::lambda2(cliqued), 4)
            .add(t_cli.has_value() ? std::to_string(*t_cli) : "-");

        ns.push_back(static_cast<double>(n));
        mix_expander.push_back(static_cast<double>(t_exp.value_or(1)));
        mix_cliqued.push_back(static_cast<double>(t_cli.value_or(1)));
        phi_cliqued.push_back(phi_cli);
    }
    table.print(std::cout);

    auto exp_fit = util::fit_loglog(ns, mix_expander);
    auto cli_fit = util::fit_loglog(ns, mix_cliqued);
    auto phi_fit = util::fit_loglog(ns, phi_cliqued);
    std::cout << "\nlog-log slopes vs n: expander mixing "
              << util::format_double(exp_fit.slope, 2) << ", two-clique mixing "
              << util::format_double(cli_fit.slope, 2) << ", two-clique phi "
              << util::format_double(phi_fit.slope, 2) << " (paper: O(1/n) ~ -1)\n\n";

    // Shape: expander mixing ~flat/logarithmic (exponent << 1); two-clique
    // mixing polynomial (exponent >= 1); conductance decays like 1/n; and
    // the two-clique/expander mixing ratio grows through the sweep (the
    // divergence the paper describes — it crosses 1 inside our range).
    double ratio_front = mix_cliqued.front() / mix_expander.front();
    double ratio_back = mix_cliqued.back() / mix_expander.back();
    bool pass = measurements_ok && exp_fit.slope < 0.75 && cli_fit.slope >= 0.9 &&
                phi_fit.slope <= -0.6 && ratio_back > 2.0 * ratio_front &&
                mix_cliqued.back() > mix_expander.back();
    return bench::verdict(
               "PRELIM", pass,
               "two-clique graph mixes polynomially (exponent " +
                   util::format_double(cli_fit.slope, 2) + ") vs expander (" +
                   util::format_double(exp_fit.slope, 2) +
                   "); conductance decays ~1/n while h stays constant")
               ? 0
               : 1;
}
