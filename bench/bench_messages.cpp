// EXPERIMENT T5b (Theorem 5, Lemma 5): amortized message complexity.
//
//   Lemma 5:   any healer needs Theta(deg(v)) messages per deletion, so
//              A(p) = avg black-degree of the deleted nodes is the best
//              possible amortized cost;
//   Theorem 5: Xheal's amortized cost is O(kappa * log n * A(p)).
//
// We run p deletions on several topologies through the scenario engine,
// report measured amortized messages, the A(p) floor and the
// kappa*log2(n)*A(p) ceiling, and check the measurement sits between them.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

struct MessageRun {
    double amortized = 0.0;
    double ap = 0.0;
    double ceiling = 0.0;
    std::size_t combines = 0;
};

MessageRun run(graph::Graph initial, const std::string& attack, std::size_t deletions,
               std::size_t d, std::uint64_t seed) {
    scenario::ScenarioSpec spec;
    spec.name = "messages-" + attack;
    spec.seed = seed;
    spec.healer = {"xheal-dist", {{"d", std::to_string(d)}}};
    scenario::PhaseSpec phase;
    phase.name = "delete";
    phase.steps = deletions;
    phase.delete_fraction = 1.0;
    phase.min_nodes = 8;
    phase.deleter = {attack, {}};
    spec.phases.push_back(phase);

    scenario::ScenarioRunner runner(spec, std::move(initial));
    runner.run();
    const auto& session = runner.session();
    MessageRun out;
    out.amortized = session.amortized_messages();
    out.ap = session.average_deleted_black_degree();
    double n = static_cast<double>(session.current().node_count());
    out.ceiling = static_cast<double>(runner.kappa()) * std::log2(std::max(4.0, n)) * out.ap;
    out.combines = session.totals().combines;
    return out;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T5b",
        "A(p) <= amortized messages <= O(kappa log n * A(p)) (Theorem 5 + Lemma 5)");

    util::Rng seed_rng(51);
    util::Table table({"initial", "n", "attack", "p", "A(p) floor", "amortized msgs",
                       "kappa*log2(n)*A(p)", "floor<=m<=ceiling", "combines"});
    bool all_ok = true;

    struct Workload {
        std::string name;
        graph::Graph g;
    };
    for (std::size_t n : {64u, 256u, 1024u}) {
        std::vector<Workload> workloads;
        workloads.push_back({"regular4", workload::make_random_regular(n, 4, seed_rng)});
        workloads.push_back(
            {"er", workload::make_erdos_renyi(n, std::min(0.9, 6.0 / static_cast<double>(n)),
                                              seed_rng)});
        for (auto& w : workloads) {
            for (const char* attack : {"random", "max-degree"}) {
                std::size_t p = n / 4;
                auto r = run(w.g, attack, p, 2, 13);
                // The floor is asymptotic (Theta): allow a 0.5 constant.
                // Oblivious (random) deletions must sit under the ceiling
                // with constant 1; the degree-adaptive hub attack chases
                // bridge nodes and drives combine cascades — measured
                // constant ~1.5 at n=1024 — so it gets a 2.5x allowance.
                // (Reported as a reproduction finding in EXPERIMENTS.md:
                // the paper's amortization argument is average-case.)
                double allowance = std::string(attack) == "max-degree" ? 2.5 : 1.0;
                bool ok = r.amortized >= 0.5 * r.ap &&
                          r.amortized <= allowance * r.ceiling;
                all_ok = all_ok && ok;
                table.row()
                    .add(w.name)
                    .add(n)
                    .add(attack)
                    .add(p)
                    .add(r.ap, 2)
                    .add(r.amortized, 2)
                    .add(r.ceiling, 1)
                    .add(ok)
                    .add(r.combines);
            }
        }
    }
    table.print(std::cout);
    std::cout << "\n";

    return bench::verdict(
               "T5b", all_ok,
               "amortized messages sit between the Lemma-5 floor and the "
               "kappa*log2(n)*A(p) ceiling (constant 1 for oblivious deletions, "
               "<=2.5 under the degree-adaptive hub attack)")
               ? 0
               : 1;
}
