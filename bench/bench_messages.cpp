// EXPERIMENT T5b (Theorem 5, Lemma 5): amortized message complexity.
//
//   Lemma 5:   any healer needs Theta(deg(v)) messages per deletion, so
//              A(p) = avg black-degree of the deleted nodes is the best
//              possible amortized cost;
//   Theorem 5: Xheal's amortized cost is O(kappa * log n * A(p)).
//
// We run p deletions on several topologies, report measured amortized
// messages, the A(p) floor and the kappa*log2(n)*A(p) ceiling, and check
// the measurement sits between them.
#include <cmath>
#include <iostream>

#include "adversary/adversary.hpp"
#include "bench_common.hpp"
#include "core/distributed_xheal.hpp"
#include "core/session.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

struct MessageRun {
    double amortized = 0.0;
    double ap = 0.0;
    double ceiling = 0.0;
    std::size_t combines = 0;
};

MessageRun run(graph::Graph initial, adversary::DeletionStrategy& attacker,
               std::size_t deletions, std::size_t d, std::uint64_t seed) {
    auto healer = std::make_unique<core::DistributedXheal>(core::XhealConfig{d, seed});
    std::size_t kappa = healer->kappa();
    core::HealingSession session(std::move(initial), std::move(healer));
    util::Rng rng(seed);
    for (std::size_t i = 0; i < deletions && session.current().node_count() > 8; ++i) {
        session.delete_node(attacker.pick(session, rng));
    }
    MessageRun out;
    out.amortized = session.amortized_messages();
    out.ap = session.average_deleted_black_degree();
    double n = static_cast<double>(session.current().node_count());
    out.ceiling = static_cast<double>(kappa) * std::log2(std::max(4.0, n)) * out.ap;
    out.combines = session.totals().combines;
    return out;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T5b",
        "A(p) <= amortized messages <= O(kappa log n * A(p)) (Theorem 5 + Lemma 5)");

    util::Rng seed_rng(51);
    util::Table table({"initial", "n", "attack", "p", "A(p) floor", "amortized msgs",
                       "kappa*log2(n)*A(p)", "floor<=m<=ceiling", "combines"});
    bool all_ok = true;

    adversary::RandomDeletion random_attack;
    adversary::MaxDegreeDeletion hub_attack;

    struct Workload {
        std::string name;
        graph::Graph g;
    };
    for (std::size_t n : {64u, 256u, 1024u}) {
        std::vector<Workload> workloads;
        workloads.push_back({"regular4", workload::make_random_regular(n, 4, seed_rng)});
        workloads.push_back(
            {"er", workload::make_erdos_renyi(n, std::min(0.9, 6.0 / static_cast<double>(n)),
                                              seed_rng)});
        for (auto& w : workloads) {
            for (auto* attack :
                 {static_cast<adversary::DeletionStrategy*>(&random_attack),
                  static_cast<adversary::DeletionStrategy*>(&hub_attack)}) {
                std::size_t p = n / 4;
                auto r = run(w.g, *attack, p, 2, 13);
                // The floor is asymptotic (Theta): allow a 0.5 constant.
                // Oblivious (random) deletions must sit under the ceiling
                // with constant 1; the degree-adaptive hub attack chases
                // bridge nodes and drives combine cascades — measured
                // constant ~1.5 at n=1024 — so it gets a 2.5x allowance.
                // (Reported as a reproduction finding in EXPERIMENTS.md:
                // the paper's amortization argument is average-case.)
                double allowance = attack == &hub_attack ? 2.5 : 1.0;
                bool ok = r.amortized >= 0.5 * r.ap &&
                          r.amortized <= allowance * r.ceiling;
                all_ok = all_ok && ok;
                table.row()
                    .add(w.name)
                    .add(n)
                    .add(std::string(attack->name()))
                    .add(p)
                    .add(r.ap, 2)
                    .add(r.amortized, 2)
                    .add(r.ceiling, 1)
                    .add(ok)
                    .add(r.combines);
            }
        }
    }
    table.print(std::cout);
    std::cout << "\n";

    return bench::verdict(
               "T5b", all_ok,
               "amortized messages sit between the Lemma-5 floor and the "
               "kappa*log2(n)*A(p) ceiling (constant 1 for oblivious deletions, "
               "<=2.5 under the degree-adaptive hub attack)")
               ? 0
               : 1;
}
