// Google-benchmark micro suite for the substrate hot paths: H-graph
// maintenance, expander-cloud rebuilds, spectral solvers, BFS, the Xheal
// repair step itself, and the graph storage core.
//
// Run with `--graph-json PATH` to skip google-benchmark and instead emit a
// machine-readable JSON report of graph-core ops/sec (add_edge, neighbor
// scan, for_each_edge at n in {1e3, 1e5}) for both the slot-indexed core
// and a replica of the old hash-of-hashes storage, so PRs have a perf
// trajectory to compare against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "core/xheal_healer.hpp"
#include "expander/hgraph.hpp"
#include "graph/algorithms.hpp"
#include "spectral/csr.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/probes.hpp"
#include "util/sharded_queue.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

std::vector<graph::NodeId> ids(std::size_t n) {
    std::vector<graph::NodeId> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<graph::NodeId>(i));
    return out;
}

void BM_HGraphConstruct(benchmark::State& state) {
    util::Rng rng(1);
    auto members = ids(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        expander::HGraph h(members, 4, rng);
        benchmark::DoNotOptimize(h.size());
    }
}
BENCHMARK(BM_HGraphConstruct)->Arg(64)->Arg(256)->Arg(1024);

void BM_HGraphInsertDelete(benchmark::State& state) {
    util::Rng rng(2);
    expander::HGraph h(ids(static_cast<std::size_t>(state.range(0))), 4, rng);
    graph::NodeId next = static_cast<graph::NodeId>(state.range(0));
    for (auto _ : state) {
        h.insert(next, rng);
        h.remove(next);
        ++next;
    }
}
BENCHMARK(BM_HGraphInsertDelete)->Arg(64)->Arg(1024);

void BM_HGraphProjection(benchmark::State& state) {
    util::Rng rng(3);
    expander::HGraph h(ids(static_cast<std::size_t>(state.range(0))), 4, rng);
    for (auto _ : state) {
        auto edges = h.edges();
        benchmark::DoNotOptimize(edges.size());
    }
}
BENCHMARK(BM_HGraphProjection)->Arg(64)->Arg(1024);

void BM_BfsDistances(benchmark::State& state) {
    util::Rng rng(4);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        auto d = graph::bfs_distances(g, 0);
        benchmark::DoNotOptimize(d.size());
    }
}
BENCHMARK(BM_BfsDistances)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Lambda2Dense(benchmark::State& state) {
    util::Rng rng(5);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::lambda2(g));
    }
}
BENCHMARK(BM_Lambda2Dense)->Arg(32)->Arg(128);

void BM_Lambda2Lanczos(benchmark::State& state) {
    util::Rng rng(6);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::lambda2(g));
    }
}
BENCHMARK(BM_Lambda2Lanczos)->Arg(512)->Arg(2048);

// ---------------------------------------------------------------------------
// Sparse probe layer (CSR snapshot + matrix-free Lanczos + budgeted BFS
// stretch): the probes behind n=1e5 scenarios like dex_scale.scn.
// ---------------------------------------------------------------------------

void BM_CsrSnapshotBuild(benchmark::State& state) {
    util::Rng rng(21);
    auto g = workload::make_hgraph_graph(static_cast<std::size_t>(state.range(0)), 3, rng);
    spectral::CsrGraph csr;
    for (auto _ : state) {
        csr.build(g);
        benchmark::DoNotOptimize(csr.edge_count());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CsrSnapshotBuild)->Arg(4096)->Arg(65536);

void BM_Lambda2SparseProbe(benchmark::State& state) {
    util::Rng rng(22);
    auto g = workload::make_hgraph_graph(static_cast<std::size_t>(state.range(0)), 3, rng);
    spectral::ProbeEngine engine;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.lambda2(g));
    }
}
BENCHMARK(BM_Lambda2SparseProbe)->Arg(4096)->Arg(65536);

void BM_SampledStretchProbe(benchmark::State& state) {
    util::Rng rng(23);
    auto g = workload::make_hgraph_graph(static_cast<std::size_t>(state.range(0)), 3, rng);
    spectral::ProbeEngine engine;
    util::Rng probe_rng(24);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.sampled_stretch(g, g, 8, probe_rng));
    }
}
BENCHMARK(BM_SampledStretchProbe)->Arg(4096)->Arg(65536);

void BM_ExactExpansion(benchmark::State& state) {
    util::Rng rng(7);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::edge_expansion_exact(g));
    }
}
BENCHMARK(BM_ExactExpansion)->Arg(12)->Arg(16)->Arg(20);

void BM_SweepCut(benchmark::State& state) {
    util::Rng rng(8);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::sweep_cut(g).expansion);
    }
}
BENCHMARK(BM_SweepCut)->Arg(256)->Arg(1024);

void BM_XhealStarRepair(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        graph::Graph g = workload::make_star(static_cast<std::size_t>(state.range(0)));
        core::XhealHealer healer(core::XhealConfig{4, 9});
        state.ResumeTiming();
        auto report = healer.on_delete(g, 0);
        benchmark::DoNotOptimize(report.edges_added);
    }
}
BENCHMARK(BM_XhealStarRepair)->Arg(64)->Arg(512)->Arg(4096);

void BM_XhealChurnStep(benchmark::State& state) {
    util::Rng rng(10);
    graph::Graph g =
        workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    core::XhealHealer healer(core::XhealConfig{2, 11});
    graph::NodeId next = static_cast<graph::NodeId>(g.node_count());
    for (auto _ : state) {
        // Delete a random node, then re-insert one attached to 3 survivors.
        auto view = g.nodes();
        std::vector<graph::NodeId> nodes(view.begin(), view.end());
        healer.on_delete(g, nodes[rng.index(nodes.size())]);
        auto sview = g.nodes();
        std::vector<graph::NodeId> survivors(sview.begin(), sview.end());
        g.add_node_with_id(next);
        for (int k = 0; k < 3; ++k)
            g.add_black_edge(next, survivors[rng.index(survivors.size())]);
        ++next;
    }
}
BENCHMARK(BM_XhealChurnStep)->Arg(128)->Arg(1024);

// The shard engine's handoff primitive (DESIGN.md decision 13): one
// producer, one consumer, a power-of-two SPSC ring. Measures round-trip
// cost per item under a live consumer thread — the per-delete overhead
// floor of `--shards N` relative to the serial call.
void BM_SpscRingHandoff(benchmark::State& state) {
    util::SpscRing<std::uint64_t> ring;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> consumed{0};
    std::thread consumer([&] {
        std::uint64_t v;
        while (!stop.load(std::memory_order_acquire))
            if (ring.try_pop(v)) consumed.fetch_add(1, std::memory_order_relaxed);
    });
    std::uint64_t pushed = 0;
    for (auto _ : state) {
        ring.push(pushed++);
    }
    while (consumed.load(std::memory_order_acquire) < pushed) {}
    stop.store(true, std::memory_order_release);
    consumer.join();
    state.SetItemsProcessed(static_cast<std::int64_t>(pushed));
}
BENCHMARK(BM_SpscRingHandoff);

// ---------------------------------------------------------------------------
// Graph storage core: slot-indexed flat adjacency vs the old hash-of-hashes.
// ---------------------------------------------------------------------------

/// Replica of the pre-refactor storage (unordered_map of unordered_map)
/// with the traversal patterns its hot paths actually used: sorted fresh
/// vectors for deterministic iteration.
class HashGraph {
public:
    void add_node() { adjacency_.emplace(next_id_++, Row{}); }

    void add_black_edge(graph::NodeId u, graph::NodeId v) {
        auto& row = adjacency_.at(u);
        auto it = row.find(v);
        if (it == row.end()) {
            row.emplace(v, graph::EdgeClaims{});
            adjacency_.at(v).emplace(u, graph::EdgeClaims{});
            ++edge_count_;
        }
        row.at(v).black = true;
        adjacency_.at(v).at(u).black = true;
    }

    std::vector<graph::NodeId> nodes_sorted() const {
        std::vector<graph::NodeId> out;
        out.reserve(adjacency_.size());
        for (const auto& [v, _] : adjacency_) out.push_back(v);
        std::sort(out.begin(), out.end());
        return out;
    }

    std::vector<graph::NodeId> neighbors_sorted(graph::NodeId v) const {
        std::vector<graph::NodeId> out;
        const auto& row = adjacency_.at(v);
        out.reserve(row.size());
        for (const auto& [u, _] : row) out.push_back(u);
        std::sort(out.begin(), out.end());
        return out;
    }

    const graph::EdgeClaims& claims(graph::NodeId u, graph::NodeId v) const {
        return adjacency_.at(u).at(v);
    }

    template <typename F>
    void for_each_edge(F&& f) const {
        for (graph::NodeId u : nodes_sorted()) {
            for (graph::NodeId v : neighbors_sorted(u)) {
                if (u < v) f(u, v, claims(u, v));
            }
        }
    }

    std::size_t edge_count() const { return edge_count_; }

private:
    using Row = std::unordered_map<graph::NodeId, graph::EdgeClaims>;
    std::unordered_map<graph::NodeId, Row> adjacency_;
    std::size_t edge_count_ = 0;
    graph::NodeId next_id_ = 0;
};

std::vector<std::pair<graph::NodeId, graph::NodeId>> random_edge_list(std::size_t n,
                                                                      std::size_t m) {
    util::Rng rng(0xbe9cULL + n);
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    edges.reserve(m);
    while (edges.size() < m) {
        auto u = static_cast<graph::NodeId>(rng.index(n));
        auto v = static_cast<graph::NodeId>(rng.index(n));
        if (u != v) edges.emplace_back(u, v);
    }
    return edges;
}

template <typename G>
G build_graph(std::size_t n,
              const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges) {
    G g;
    for (std::size_t i = 0; i < n; ++i) g.add_node();
    for (const auto& [u, v] : edges) g.add_black_edge(u, v);
    return g;
}

void BM_GraphAddEdge(benchmark::State& state) {
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto edges = random_edge_list(n, 4 * n);
    for (auto _ : state) {
        auto g = build_graph<graph::Graph>(n, edges);
        benchmark::DoNotOptimize(g.edge_count());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * edges.size()));
}
BENCHMARK(BM_GraphAddEdge)->Arg(1000)->Arg(100000);

void BM_GraphNeighborScan(benchmark::State& state) {
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto g = build_graph<graph::Graph>(n, random_edge_list(n, 4 * n));
    for (auto _ : state) {
        std::uint64_t checksum = 0;
        for (graph::NodeId v : g.nodes())
            for (graph::NodeId u : g.neighbors(v)) checksum += u;
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 2 * g.edge_count()));
}
BENCHMARK(BM_GraphNeighborScan)->Arg(1000)->Arg(100000);

void BM_GraphForEachEdge(benchmark::State& state) {
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto g = build_graph<graph::Graph>(n, random_edge_list(n, 4 * n));
    for (auto _ : state) {
        std::uint64_t blacks = 0;
        g.for_each_edge([&](graph::NodeId, graph::NodeId, const graph::EdgeClaims& c) {
            blacks += c.black ? 1 : 0;
        });
        benchmark::DoNotOptimize(blacks);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * g.edge_count()));
}
BENCHMARK(BM_GraphForEachEdge)->Arg(1000)->Arg(100000);

// ----- machine-readable graph-core report (BENCH_graph.json) -----

/// Run `body` until ~min_seconds of measured time accumulates; returns
/// ops/sec given ops per call.
template <typename F>
double measure_ops_per_sec(std::size_t ops_per_call, F&& body, double min_seconds = 0.25) {
    using clock = std::chrono::steady_clock;
    double elapsed = 0.0;
    std::size_t calls = 0;
    while (elapsed < min_seconds) {
        auto t0 = clock::now();
        body();
        auto t1 = clock::now();
        elapsed += std::chrono::duration<double>(t1 - t0).count();
        ++calls;
    }
    return static_cast<double>(calls) * static_cast<double>(ops_per_call) / elapsed;
}

struct GraphBenchRow {
    const char* op;
    std::size_t n;
    const char* impl;
    double ops_per_sec;
};

template <typename G>
void run_graph_rows(const char* impl, std::size_t n, std::vector<GraphBenchRow>& rows) {
    auto edges = random_edge_list(n, 4 * n);
    rows.push_back({"add_edge", n, impl, measure_ops_per_sec(edges.size(), [&] {
                        auto g = build_graph<G>(n, edges);
                        benchmark::DoNotOptimize(g.edge_count());
                    })});

    auto g = build_graph<G>(n, edges);
    rows.push_back({"neighbor_scan", n, impl, measure_ops_per_sec(2 * g.edge_count(), [&] {
                        std::uint64_t checksum = 0;
                        if constexpr (std::is_same_v<G, graph::Graph>) {
                            for (graph::NodeId v : g.nodes())
                                for (graph::NodeId u : g.neighbors(v)) checksum += u;
                        } else {
                            // What the old hot paths did for deterministic
                            // iteration: materialize + sort per visit.
                            for (graph::NodeId v : g.nodes_sorted())
                                for (graph::NodeId u : g.neighbors_sorted(v)) checksum += u;
                        }
                        benchmark::DoNotOptimize(checksum);
                    })});

    rows.push_back({"for_each_edge", n, impl, measure_ops_per_sec(g.edge_count(), [&] {
                        std::uint64_t blacks = 0;
                        g.for_each_edge(
                            [&](graph::NodeId, graph::NodeId, const graph::EdgeClaims& c) {
                                blacks += c.black ? 1 : 0;
                            });
                        benchmark::DoNotOptimize(blacks);
                    })});
}

/// Before/after rows for the preferential-attach sampler: impl "scan"
/// replicates the old O(n)-per-pick prefix-sum walk; impl "sampler" is the
/// shipped rejection sampler (adversary::PreferentialAttach). Identical
/// (degree+1)-proportional distribution, wildly different cost growth.
void run_pref_attach_rows(std::size_t n, std::vector<GraphBenchRow>& rows) {
    util::Rng topo_rng(11);
    core::HealingSession session(workload::make_random_regular(n, 4, topo_rng),
                                 std::make_unique<baseline::NoHealHealer>());
    const std::size_t k = 3, picks_per_call = 50;

    rows.push_back({"pref_attach", n, "scan", measure_ops_per_sec(picks_per_call, [&] {
                        util::Rng rng(42);
                        const auto& g = session.current();
                        for (std::size_t p = 0; p < picks_per_call; ++p) {
                            std::vector<graph::NodeId> pool = session.alive_pool();
                            std::vector<graph::NodeId> chosen;
                            for (std::size_t round = 0; round < k && !pool.empty();
                                 ++round) {
                                double total = 0.0;
                                for (graph::NodeId v : pool)
                                    total += static_cast<double>(g.degree(v) + 1);
                                double target = rng.uniform01() * total;
                                std::size_t pick = pool.size() - 1;
                                double acc = 0.0;
                                for (std::size_t i = 0; i < pool.size(); ++i) {
                                    acc += static_cast<double>(g.degree(pool[i]) + 1);
                                    if (acc >= target) {
                                        pick = i;
                                        break;
                                    }
                                }
                                chosen.push_back(pool[pick]);
                                pool.erase(pool.begin() +
                                           static_cast<std::ptrdiff_t>(pick));
                            }
                            benchmark::DoNotOptimize(chosen.size());
                        }
                    })});

    rows.push_back({"pref_attach", n, "sampler",
                    measure_ops_per_sec(picks_per_call, [&] {
                        util::Rng rng(42);
                        adversary::PreferentialAttach attach(k);
                        for (std::size_t p = 0; p < picks_per_call; ++p) {
                            auto chosen = attach.pick_neighbors(session, rng);
                            benchmark::DoNotOptimize(chosen.size());
                        }
                    })});
}

int emit_graph_json(const std::string& path) {
    // Validate the output path before burning seconds of measurement.
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }

    std::vector<GraphBenchRow> rows;
    for (std::size_t n : {std::size_t{1000}, std::size_t{100000}}) {
        run_graph_rows<graph::Graph>("slot", n, rows);
        run_graph_rows<HashGraph>("hash", n, rows);
        run_pref_attach_rows(n, rows);
    }
    out << "{\n  \"schema\": \"xheal-bench-graph-v1\",\n"
        << "  \"note\": \"ops/sec; impl 'hash' replicates the pre-refactor "
           "hash-of-hashes storage with its sorted-iteration call pattern; op "
           "'pref_attach' (picks/sec, k=3) compares the old O(n) prefix-sum "
           "pick ('scan') with the degree-proportional rejection sampler "
           "('sampler')\",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out << "    {\"op\": \"" << rows[i].op << "\", \"n\": " << rows[i].n
            << ", \"impl\": \"" << rows[i].impl << "\", \"ops_per_sec\": "
            << static_cast<std::uint64_t>(rows[i].ops_per_sec) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
        std::cout << rows[i].op << " n=" << rows[i].n << " " << rows[i].impl << ": "
                  << static_cast<std::uint64_t>(rows[i].ops_per_sec) << " ops/sec\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--graph-json") == 0) {
            return emit_graph_json(i + 1 < argc ? argv[i + 1] : "BENCH_graph.json");
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
