// Google-benchmark micro suite for the substrate hot paths: H-graph
// maintenance, expander-cloud rebuilds, spectral solvers, BFS, and the
// Xheal repair step itself.
#include <benchmark/benchmark.h>

#include "core/xheal_healer.hpp"
#include "expander/hgraph.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

std::vector<graph::NodeId> ids(std::size_t n) {
    std::vector<graph::NodeId> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<graph::NodeId>(i));
    return out;
}

void BM_HGraphConstruct(benchmark::State& state) {
    util::Rng rng(1);
    auto members = ids(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        expander::HGraph h(members, 4, rng);
        benchmark::DoNotOptimize(h.size());
    }
}
BENCHMARK(BM_HGraphConstruct)->Arg(64)->Arg(256)->Arg(1024);

void BM_HGraphInsertDelete(benchmark::State& state) {
    util::Rng rng(2);
    expander::HGraph h(ids(static_cast<std::size_t>(state.range(0))), 4, rng);
    graph::NodeId next = static_cast<graph::NodeId>(state.range(0));
    for (auto _ : state) {
        h.insert(next, rng);
        h.remove(next);
        ++next;
    }
}
BENCHMARK(BM_HGraphInsertDelete)->Arg(64)->Arg(1024);

void BM_HGraphProjection(benchmark::State& state) {
    util::Rng rng(3);
    expander::HGraph h(ids(static_cast<std::size_t>(state.range(0))), 4, rng);
    for (auto _ : state) {
        auto edges = h.edges();
        benchmark::DoNotOptimize(edges.size());
    }
}
BENCHMARK(BM_HGraphProjection)->Arg(64)->Arg(1024);

void BM_BfsDistances(benchmark::State& state) {
    util::Rng rng(4);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        auto d = graph::bfs_distances(g, 0);
        benchmark::DoNotOptimize(d.size());
    }
}
BENCHMARK(BM_BfsDistances)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Lambda2Dense(benchmark::State& state) {
    util::Rng rng(5);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::lambda2(g));
    }
}
BENCHMARK(BM_Lambda2Dense)->Arg(32)->Arg(128);

void BM_Lambda2Lanczos(benchmark::State& state) {
    util::Rng rng(6);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::lambda2(g));
    }
}
BENCHMARK(BM_Lambda2Lanczos)->Arg(512)->Arg(2048);

void BM_ExactExpansion(benchmark::State& state) {
    util::Rng rng(7);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::edge_expansion_exact(g));
    }
}
BENCHMARK(BM_ExactExpansion)->Arg(12)->Arg(16)->Arg(20);

void BM_SweepCut(benchmark::State& state) {
    util::Rng rng(8);
    auto g = workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectral::sweep_cut(g).expansion);
    }
}
BENCHMARK(BM_SweepCut)->Arg(256)->Arg(1024);

void BM_XhealStarRepair(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        graph::Graph g = workload::make_star(static_cast<std::size_t>(state.range(0)));
        core::XhealHealer healer(core::XhealConfig{4, 9});
        state.ResumeTiming();
        auto report = healer.on_delete(g, 0);
        benchmark::DoNotOptimize(report.edges_added);
    }
}
BENCHMARK(BM_XhealStarRepair)->Arg(64)->Arg(512)->Arg(4096);

void BM_XhealChurnStep(benchmark::State& state) {
    util::Rng rng(10);
    graph::Graph g =
        workload::make_random_regular(static_cast<std::size_t>(state.range(0)), 4, rng);
    core::XhealHealer healer(core::XhealConfig{2, 11});
    graph::NodeId next = static_cast<graph::NodeId>(g.node_count());
    for (auto _ : state) {
        // Delete a random node, then re-insert one attached to 3 survivors.
        auto nodes = g.nodes_sorted();
        healer.on_delete(g, nodes[rng.index(nodes.size())]);
        auto survivors = g.nodes_sorted();
        g.add_node_with_id(next);
        for (int k = 0; k < 3; ++k)
            g.add_black_edge(next, survivors[rng.index(survivors.size())]);
        ++next;
    }
}
BENCHMARK(BM_XhealChurnStep)->Arg(128)->Arg(1024);

}  // namespace
