// EXPERIMENT T5a (Theorem 5): a repair completes in O(log n) rounds.
//
// Two regimes on the distributed implementation, both expressed as
// scenario-engine schedules (scenario/runner.hpp):
//   * hub repair — delete the center of a star of n leaves, the worst case
//     (the tournament election over n candidates): rounds ~ log2(n);
//   * steady churn — random deletions on a bounded-degree expander: rounds
//     stay far below the log n envelope (constant-degree repairs).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

/// Star of n leaves, one max-degree (= hub) deletion on distributed Xheal.
scenario::ScenarioSpec hub_spec(std::size_t n) {
    scenario::ScenarioSpec spec;
    spec.name = "hub-repair";
    spec.seed = 5;
    spec.topology = {"star", {{"leaves", std::to_string(n)}}};
    spec.healer = {"xheal-dist", {{"d", "2"}}};
    scenario::PhaseSpec kill;
    kill.name = "kill";
    kill.steps = 1;
    kill.delete_fraction = 1.0;
    kill.min_nodes = 1;
    kill.deleter = {"max-degree", {}};
    spec.phases.push_back(kill);
    return spec;
}

/// `deletions` random deletions on a prebuilt 4-regular expander.
scenario::ScenarioSpec churn_spec(std::size_t deletions) {
    scenario::ScenarioSpec spec;
    spec.name = "steady-churn";
    spec.seed = 11;
    spec.healer = {"xheal-dist", {{"d", "2"}, {"seed", "7"}}};
    scenario::PhaseSpec churn;
    churn.name = "churn";
    churn.steps = deletions;
    churn.delete_fraction = 1.0;
    churn.min_nodes = 8;
    churn.deleter = {"random", {}};
    spec.phases.push_back(churn);
    return spec;
}

}  // namespace

int main() {
    bench::experiment_header("T5a", "repair completes in O(log n) rounds (Theorem 5)");

    // ---- hub repairs: rounds vs n ------------------------------------
    util::Table hub_table({"n (star leaves)", "rounds", "log2(n)", "rounds/log2(n)"});
    std::vector<double> ns, rounds_series;
    bool hub_ok = true;
    for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
        scenario::ScenarioRunner runner(hub_spec(n));
        auto result = runner.run();
        double rounds = result.phases[0].rounds.max();
        double logn = std::log2(static_cast<double>(n));
        hub_table.row()
            .add(n)
            .add(static_cast<std::size_t>(rounds))
            .add(logn, 2)
            .add(rounds / logn, 3);
        ns.push_back(static_cast<double>(n));
        rounds_series.push_back(rounds);
        hub_ok = hub_ok && rounds <= 3.0 * logn + 8.0;
    }
    hub_table.print(std::cout);
    auto fit = util::fit_vs_log2(ns, rounds_series);
    auto poly = util::fit_loglog(ns, rounds_series);
    std::cout << "\nhub repair rounds vs log2(n): slope "
              << util::format_double(fit.slope, 3) << " (r2 "
              << util::format_double(fit.r2, 3) << "), log-log exponent "
              << util::format_double(poly.slope, 3) << "\n\n";

    // ---- steady churn: rounds stay under the envelope ------------------
    util::Table churn_table({"n (4-regular)", "deletions", "mean rounds", "max rounds",
                             "3*log2(n)+8"});
    bool churn_ok = true;
    util::Rng seed_rng(3);
    for (std::size_t n : {32u, 128u, 512u}) {
        graph::Graph initial = workload::make_random_regular(n, 4, seed_rng);
        std::size_t deletions = n / 4;
        scenario::ScenarioRunner runner(churn_spec(deletions), std::move(initial));
        auto result = runner.run();
        const auto& rounds = result.phases[0].rounds;
        double envelope = 3.0 * std::log2(static_cast<double>(n)) + 8.0;
        churn_ok = churn_ok && rounds.max() <= envelope;
        churn_table.row()
            .add(n)
            .add(deletions)
            .add(rounds.mean(), 2)
            .add(rounds.max(), 0)
            .add(envelope, 1);
    }
    churn_table.print(std::cout);
    std::cout << "\n";

    // Shape: hub repairs grow ~1x log2(n) (fit slope ~1, strongly sub-
    // polynomial); churn repairs stay below the O(log n) envelope.
    bool pass = hub_ok && churn_ok && fit.slope >= 0.5 && fit.slope <= 2.5 &&
                poly.slope < 0.5;
    return bench::verdict("T5a", pass,
                          "rounds/deletion grow like log2(n): fit slope " +
                              util::format_double(fit.slope, 2) + ", exponent " +
                              util::format_double(poly.slope, 2) +
                              "; churn stays under the 3*log2(n)+8 envelope")
               ? 0
               : 1;
}
