// EXPERIMENT T2.3 (Theorem 2(3), Lemmas 1-2): after every healed deletion,
//   h(G_t) >= min(alpha, h(G'_t))   for a fixed constant alpha >= 1.
//
// We run deletion sequences on three initial topologies under two attack
// strategies, tracking h(G_t) against min(1, h(G'_t)) — exactly for small
// graphs, by Fiedler sweep for larger ones — and compare against the
// Forgiving-Tree-style baseline, which violates the rule.
#include <algorithm>
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

struct RunResult {
    double min_h_ratio = 1e9;  ///< min over steps of h(G) / min(1, h(G'))
    double final_h = 0.0;
    bool connected = true;
};

RunResult run(std::unique_ptr<core::Healer> healer, graph::Graph initial,
              adversary::DeletionStrategy& attacker, std::size_t deletions,
              std::uint64_t seed) {
    util::Rng rng(seed);
    core::HealingSession session(std::move(initial), std::move(healer));
    RunResult out;
    for (std::size_t i = 0; i < deletions && session.current().node_count() > 6; ++i) {
        session.delete_node(attacker.pick(session, rng));
        double h_now = spectral::edge_expansion_estimate(session.current());
        double h_ref = spectral::edge_expansion_estimate(session.reference());
        double rule = std::min(1.0, h_ref);
        if (rule > 0) out.min_h_ratio = std::min(out.min_h_ratio, h_now / rule);
        out.final_h = h_now;
        out.connected = out.connected && graph::is_connected(session.current());
    }
    return out;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T2.3", "h(G_t) >= min(alpha, h(G'_t)), alpha >= 1 (Theorem 2(3))");

    util::Rng seed_rng(2023);
    util::Table table({"initial", "n", "attack", "healer", "min h/min(1,h')",
                       "final h", "connected"});

    struct Workload {
        std::string name;
        graph::Graph g;
        std::size_t deletions;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"regular6-exact", workload::make_random_regular(16, 6, seed_rng), 8});
    workloads.push_back({"regular6", workload::make_random_regular(96, 6, seed_rng), 48});
    workloads.push_back({"er", workload::make_erdos_renyi(96, 0.08, seed_rng), 48});
    workloads.push_back({"dumbbell", workload::make_dumbbell(24), 16});
    // The paper's motivating case: the hub attack on a star is where tree
    // repair visibly violates the expansion rule (h drops to O(1/n)).
    workloads.push_back({"star", workload::make_star(95), 24});

    adversary::RandomDeletion random_attack;
    adversary::MaxDegreeDeletion hub_attack;

    bool xheal_ok = true;
    double tree_worst = 1e9;
    for (const auto& w : workloads) {
        for (auto* attack : {static_cast<adversary::DeletionStrategy*>(&random_attack),
                             static_cast<adversary::DeletionStrategy*>(&hub_attack)}) {
            auto xh = run(std::make_unique<core::XhealHealer>(core::XhealConfig{3, 11}),
                          w.g, *attack, w.deletions, 5);
            table.row()
                .add(w.name)
                .add(w.g.node_count())
                .add(std::string(attack->name()))
                .add("xheal")
                .add(xh.min_h_ratio, 3)
                .add(xh.final_h, 3)
                .add(xh.connected);
            // Tolerance 0.5: the sweep estimator is an upper bound on h for
            // both G and G', so the ratio is noisy but its shape is clear.
            xheal_ok = xheal_ok && xh.connected && xh.min_h_ratio >= 0.5;

            auto tree = run(std::make_unique<baseline::ForgivingTreeStyleHealer>(), w.g,
                            *attack, w.deletions, 5);
            table.row()
                .add(w.name)
                .add(w.g.node_count())
                .add(std::string(attack->name()))
                .add("forgiving-tree")
                .add(tree.min_h_ratio, 3)
                .add(tree.final_h, 3)
                .add(tree.connected);
            tree_worst = std::min(tree_worst, tree.min_h_ratio);
        }
    }
    table.print(std::cout);
    std::cout << "\n";

    bool pass = xheal_ok && tree_worst < 0.5;
    return bench::verdict("T2.3", pass,
                          "xheal holds h(G) >= ~min(1, h(G')) on every run; the "
                          "tree baseline's worst ratio is " +
                              util::format_double(tree_worst, 3))
               ? 0
               : 1;
}
