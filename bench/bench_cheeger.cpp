// EXPERIMENT TH1 (Theorem 1, Cheeger inequality):
//   2 * phi(G) >= lambda2(G) > phi(G)^2 / 2
// for the normalized Laplacian. Verified exactly (subset enumeration) on a
// zoo of small graphs and with sweep-cut upper bounds on larger ones; also
// verified on healed graphs mid-attack, since the spectral analysis of
// Section 4.2 applies Theorem 1 to G_t.
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

int main() {
    bench::experiment_header("TH1", "2*phi >= lambda2 > phi^2/2 (Cheeger, Theorem 1)");

    util::Rng rng(61);
    util::Table table({"graph", "n", "phi (exact)", "lambda2", "2*phi>=l2", "l2>phi^2/2"});
    bool all_ok = true;

    struct Entry {
        std::string name;
        graph::Graph g;
    };
    std::vector<Entry> zoo;
    zoo.push_back({"path9", workload::make_path(9)});
    zoo.push_back({"cycle12", workload::make_cycle(12)});
    zoo.push_back({"complete8", workload::make_complete(8)});
    zoo.push_back({"star10", workload::make_star(10)});
    zoo.push_back({"dumbbell6", workload::make_dumbbell(6)});
    zoo.push_back({"petersen", workload::make_petersen()});
    zoo.push_back({"grid3x4", workload::make_grid(3, 4)});
    zoo.push_back({"hypercube3", workload::make_hypercube(3)});
    zoo.push_back({"tree15", workload::make_binary_tree(15)});
    zoo.push_back({"regular4", workload::make_random_regular(14, 4, rng)});
    zoo.push_back({"er16", workload::make_erdos_renyi(16, 0.3, rng)});
    zoo.push_back({"hgraph14", workload::make_hgraph_graph(14, 2, rng)});

    for (const auto& e : zoo) {
        double phi = spectral::cheeger_exact(e.g);
        double l2 = spectral::lambda2(e.g);
        bool upper = 2.0 * phi + 1e-9 >= l2;
        bool lower = l2 > phi * phi / 2.0 - 1e-9;
        all_ok = all_ok && upper && lower;
        table.row().add(e.name).add(e.g.node_count()).add(phi, 4).add(l2, 4).add(upper).add(lower);
    }
    table.print(std::cout);

    // Healed graphs mid-attack (exact, small n).
    std::cout << "\nCheeger inequality on healed graphs (Section 4.2 usage):\n";
    util::Table healed({"step", "n", "phi(G_t)", "lambda2(G_t)", "2*phi>=l2",
                        "l2>phi^2/2"});
    core::HealingSession session(
        workload::make_random_regular(16, 4, rng),
        std::make_unique<core::XhealHealer>(core::XhealConfig{2, 71}));
    adversary::RandomDeletion attacker;
    for (int step = 0; step < 6; ++step) {
        session.delete_node(attacker.pick(session, rng));
        double phi = spectral::cheeger_exact(session.current());
        double l2 = spectral::lambda2(session.current());
        bool upper = 2.0 * phi + 1e-9 >= l2;
        bool lower = l2 > phi * phi / 2.0 - 1e-9;
        all_ok = all_ok && upper && lower;
        healed.row()
            .add(step)
            .add(session.current().node_count())
            .add(phi, 4)
            .add(l2, 4)
            .add(upper)
            .add(lower);
    }
    healed.print(std::cout);
    std::cout << "\n";

    return bench::verdict("TH1", all_ok,
                          "both Cheeger directions hold on every graph, including "
                          "healed graphs mid-attack")
               ? 0
               : 1;
}
