// EXPERIMENT T2.4 + C1 (Theorem 2(4), Corollary 1): the algebraic
// connectivity of the healed graph obeys
//   lambda2(G_t) >= min( Omega(lambda2(G')^2 dmin'^2/(kappa dmax')^2),
//                        Omega(1/(kappa dmax')^2) ),
// and in particular a bounded-degree expander stays an expander (lambda2
// bounded away from 0) while tree-style healing lets it decay toward 0.
#include <algorithm>
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "spectral/laplacian.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

struct SpectralRun {
    double min_lambda2 = 1e9;      ///< min over checkpoints of lambda2(G_t)
    double min_margin = 1e9;       ///< min of lambda2(G_t) / theorem bound
    double final_lambda2 = 0.0;
};

SpectralRun run(std::unique_ptr<core::Healer> healer, graph::Graph initial,
                std::size_t kappa, std::size_t deletions, std::uint64_t seed) {
    util::Rng rng(seed);
    core::HealingSession session(std::move(initial), std::move(healer));
    adversary::MaxDegreeDeletion attacker;
    SpectralRun out;
    for (std::size_t i = 0; i < deletions && session.current().node_count() > 8; ++i) {
        session.delete_node(attacker.pick(session, rng));
        double l2 = spectral::lambda2(session.current());
        double l2_ref = spectral::lambda2(session.reference());
        double bound = core::theorem2_lambda_bound(l2_ref,
                                                   session.reference().min_degree(),
                                                   session.reference().max_degree(), kappa);
        out.min_lambda2 = std::min(out.min_lambda2, l2);
        if (bound > 0) out.min_margin = std::min(out.min_margin, l2 / bound);
        out.final_lambda2 = l2;
    }
    return out;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T2.4+C1",
        "lambda2(G_t) >= Theorem-2(4) bound; expander in => expander out (Corollary 1)");

    util::Rng seed_rng(41);
    util::Table table({"initial", "n", "healer", "min lambda2", "final lambda2",
                       "min lambda2/bound"});

    bool margins_ok = true;
    double xheal_expander_min = 1e9;

    // ---- Theorem 2(4) bound + Corollary 1 on bounded-degree expanders ----
    for (std::size_t n : {32u, 64u, 128u}) {
        graph::Graph expander = workload::make_random_regular(n, 6, seed_rng);
        std::size_t deletions = 2 * n / 3;
        auto xh = run(std::make_unique<core::XhealHealer>(core::XhealConfig{3, 5}),
                      expander, 6, deletions, 7);
        table.row()
            .add("regular6")
            .add(n)
            .add("xheal")
            .add(xh.min_lambda2, 4)
            .add(xh.final_lambda2, 4)
            .add(xh.min_margin, 1);
        margins_ok = margins_ok && xh.min_margin >= 1.0;
        xheal_expander_min = std::min(xheal_expander_min, xh.min_lambda2);
    }

    // ---- Corollary 1 contrast: hub-dependent topology (the star) ----
    // On a bounded-degree expander any local patch is tiny, so even tree
    // repair survives; the gap appears exactly where the paper says — when
    // a deleted node's neighborhood depends on it (hub deletion).
    double xheal_star_min = 1e9, tree_star_min = 1e9;
    for (std::size_t n : {64u, 128u, 256u}) {
        graph::Graph star = workload::make_star(n - 1);
        std::size_t deletions = n / 4;
        auto xh = run(std::make_unique<core::XhealHealer>(core::XhealConfig{3, 5}), star,
                      6, deletions, 7);
        table.row()
            .add("star")
            .add(n)
            .add("xheal")
            .add(xh.min_lambda2, 4)
            .add(xh.final_lambda2, 4)
            .add("-");
        xheal_star_min = std::min(xheal_star_min, xh.min_lambda2);
        auto tree = run(std::make_unique<baseline::ForgivingTreeStyleHealer>(), star, 6,
                        deletions, 7);
        table.row()
            .add("star")
            .add(n)
            .add("forgiving-tree")
            .add(tree.min_lambda2, 4)
            .add(tree.final_lambda2, 4)
            .add("-");
        tree_star_min = std::min(tree_star_min, tree.min_lambda2);
    }
    // A non-expander input: the bound still holds (it scales with lambda2(G')).
    graph::Graph grid = workload::make_grid(8, 8);
    auto gr = run(std::make_unique<core::XhealHealer>(core::XhealConfig{2, 9}), grid, 4,
                  16, 11);
    table.row()
        .add("grid8x8")
        .add(std::size_t{64})
        .add("xheal")
        .add(gr.min_lambda2, 4)
        .add(gr.final_lambda2, 4)
        .add(gr.min_margin, 1);
    margins_ok = margins_ok && gr.min_margin >= 1.0;
    table.print(std::cout);

    std::cout << "\nCorollary 1: xheal keeps lambda2 >= "
              << util::format_double(std::min(xheal_expander_min, xheal_star_min), 4)
              << " everywhere; on hub deletions the tree baseline decays to "
              << util::format_double(tree_star_min, 4) << " (xheal/tree = "
              << util::format_double(xheal_star_min / tree_star_min, 1) << "x)\n\n";

    bool pass = margins_ok && xheal_expander_min >= 0.05 && xheal_star_min >= 0.05 &&
                xheal_star_min > 5.0 * tree_star_min;
    return bench::verdict(
               "T2.4+C1", pass,
               "lambda2 stays above the Theorem-2(4) bound everywhere; the healed "
               "graph stays an expander under xheal (min lambda2 " +
                   util::format_double(std::min(xheal_expander_min, xheal_star_min), 3) +
                   ") while tree repair collapses to " +
                   util::format_double(tree_star_min, 4) + " on hub deletions")
               ? 0
               : 1;
}
