// Shared conventions for the experiment benches. Every bench binary
// regenerates one experiment from DESIGN.md section 3: it prints the
// workload, the paper's claimed bound, the measured values, and a SHAPE
// verdict line ("who wins / growth rate"), machine-greppable as
// "VERDICT <exp-id> PASS|FAIL".
#pragma once

#include <iostream>
#include <string>

#include "util/table.hpp"

namespace xheal::bench {

inline void experiment_header(const std::string& id, const std::string& claim) {
    std::cout << "==============================================================\n";
    std::cout << "EXPERIMENT " << id << "\n";
    std::cout << "paper claim: " << claim << "\n";
    std::cout << "==============================================================\n";
}

inline bool verdict(const std::string& id, bool pass, const std::string& note) {
    std::cout << "VERDICT " << id << " " << (pass ? "PASS" : "FAIL") << " — " << note
              << "\n\n";
    return pass;
}

}  // namespace xheal::bench
