// EXPERIMENT T2.1 (Theorem 2(1), Lemma 3): for every surviving node x,
//   degree(x, G_t) <= kappa * degree(x, G'_t) + 2*kappa.
//
// Heavy insert/delete churn on three topologies with kappa swept over
// {2,4,6,8} (d in {1,2,3,4}), run through the scenario engine with the
// per-step "degree" probe; we record the worst observed ratio
// (deg_G - 2*kappa) / deg_G' and check it never exceeds kappa. The
// Star baseline shows what unbounded degree concentration looks like.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

/// Worst over all steps and nodes of (deg_G(v) - 2*kappa) / deg_G'(v),
/// sampled after every churn step by the runner's degree probe.
double churn_worst_ratio(const std::string& healer_kind,
                         const std::map<std::string, std::string>& healer_params,
                         graph::Graph initial, std::size_t steps, std::uint64_t seed,
                         std::size_t* max_degree_seen = nullptr) {
    scenario::ScenarioSpec spec;
    spec.name = "degree-churn";
    spec.seed = seed;
    spec.healer = {healer_kind, healer_params};
    spec.probes = {"degree"};
    spec.sample_every = 1;
    scenario::PhaseSpec churn;
    churn.name = "churn";
    churn.steps = steps;
    churn.delete_fraction = 0.55;
    churn.min_nodes = 8;
    churn.deleter = {"random", {}};
    churn.inserter = {"preferential-attach", {{"k", "3"}}};
    spec.phases.push_back(churn);

    scenario::ScenarioRunner runner(spec, std::move(initial));
    auto result = runner.run();
    double worst = 0.0;
    std::size_t max_deg = 0;
    for (const auto& sample : result.samples) {
        worst = std::max(worst, sample.worst_slack_ratio);
        max_deg = std::max(max_deg, sample.max_degree);
    }
    if (max_degree_seen != nullptr) *max_degree_seen = max_deg;
    return worst;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T2.1", "deg(x, G_t) <= kappa * deg(x, G'_t) + 2*kappa (Lemma 3)");

    util::Rng seed_rng(31);
    util::Table table({"initial", "d", "kappa", "worst (deg-2k)/deg'", "bound kappa",
                       "holds"});
    bool all_hold = true;

    struct Workload {
        std::string name;
        graph::Graph g;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"er", workload::make_erdos_renyi(48, 0.12, seed_rng)});
    workloads.push_back({"ba", workload::make_barabasi_albert(48, 2, seed_rng)});
    workloads.push_back({"regular4", workload::make_random_regular(48, 4, seed_rng)});

    for (const auto& w : workloads) {
        for (std::size_t d : {1u, 2u, 3u, 4u}) {
            std::size_t kappa = 2 * d;
            double worst = churn_worst_ratio(
                "xheal", {{"d", std::to_string(d)}, {"seed", std::to_string(7 + d)}}, w.g,
                120, 13 + d);
            bool holds = worst <= static_cast<double>(kappa) + 1e-9;
            all_hold = all_hold && holds;
            table.row()
                .add(w.name)
                .add(d)
                .add(kappa)
                .add(worst, 3)
                .add(kappa)
                .add(holds);
        }
    }
    table.print(std::cout);

    // Baseline contrast: the star healer concentrates unbounded degree.
    std::size_t star_max = 0;
    churn_worst_ratio("star", {}, workload::make_erdos_renyi(48, 0.12, seed_rng), 120, 99,
                      &star_max);
    std::size_t xheal_max = 0;
    churn_worst_ratio("xheal", {{"d", "2"}, {"seed", "7"}},
                      workload::make_erdos_renyi(48, 0.12, seed_rng), 120, 99, &xheal_max);
    std::cout << "\nbaseline contrast: max degree under churn — star healer "
              << star_max << " vs xheal(kappa=4) " << xheal_max << "\n\n";

    bool pass = all_hold && star_max > xheal_max;
    return bench::verdict("T2.1",
                          pass,
                          "ratio bound holds for every kappa; star baseline max degree " +
                              std::to_string(star_max) + " vs xheal " +
                              std::to_string(xheal_max))
               ? 0
               : 1;
}
