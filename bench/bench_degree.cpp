// EXPERIMENT T2.1 (Theorem 2(1), Lemma 3): for every surviving node x,
//   degree(x, G_t) <= kappa * degree(x, G'_t) + 2*kappa.
//
// Heavy insert/delete churn on three topologies with kappa swept over
// {2,4,6,8} (d in {1,2,3,4}); we record the worst observed ratio
// (deg_G - 2*kappa) / deg_G' and check it never exceeds kappa. The
// Star baseline shows what unbounded degree concentration looks like.
#include <algorithm>
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

/// Worst over all steps and nodes of (deg_G(v) - 2*kappa) / deg_G'(v).
double churn_worst_ratio(std::unique_ptr<core::Healer> healer, graph::Graph initial,
                         std::size_t kappa, std::size_t steps, std::uint64_t seed,
                         std::size_t* max_degree_seen = nullptr) {
    util::Rng rng(seed);
    core::HealingSession session(std::move(initial), std::move(healer));
    adversary::RandomDeletion deleter;
    adversary::PreferentialAttach inserter(3);
    double worst = 0.0;
    std::size_t max_deg = 0;
    for (std::size_t t = 0; t < steps; ++t) {
        if (rng.chance(0.55) && session.current().node_count() > 8) {
            session.delete_node(deleter.pick(session, rng));
        } else {
            session.insert_node(inserter.pick_neighbors(session, rng));
        }
        const auto& g = session.current();
        for (graph::NodeId v : g.nodes()) {
            std::size_t dref = session.reference().degree(v);
            max_deg = std::max(max_deg, g.degree(v));
            if (dref == 0) continue;
            double slack = static_cast<double>(g.degree(v)) -
                           2.0 * static_cast<double>(kappa);
            worst = std::max(worst, slack / static_cast<double>(dref));
        }
    }
    if (max_degree_seen != nullptr) *max_degree_seen = max_deg;
    return worst;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T2.1", "deg(x, G_t) <= kappa * deg(x, G'_t) + 2*kappa (Lemma 3)");

    util::Rng seed_rng(31);
    util::Table table({"initial", "d", "kappa", "worst (deg-2k)/deg'", "bound kappa",
                       "holds"});
    bool all_hold = true;

    struct Workload {
        std::string name;
        graph::Graph g;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"er", workload::make_erdos_renyi(48, 0.12, seed_rng)});
    workloads.push_back({"ba", workload::make_barabasi_albert(48, 2, seed_rng)});
    workloads.push_back({"regular4", workload::make_random_regular(48, 4, seed_rng)});

    for (const auto& w : workloads) {
        for (std::size_t d : {1u, 2u, 3u, 4u}) {
            std::size_t kappa = 2 * d;
            double worst = churn_worst_ratio(
                std::make_unique<core::XhealHealer>(core::XhealConfig{d, 7 + d}), w.g,
                kappa, 120, 13 + d);
            bool holds = worst <= static_cast<double>(kappa) + 1e-9;
            all_hold = all_hold && holds;
            table.row()
                .add(w.name)
                .add(d)
                .add(kappa)
                .add(worst, 3)
                .add(kappa)
                .add(holds);
        }
    }
    table.print(std::cout);

    // Baseline contrast: the star healer concentrates unbounded degree.
    std::size_t star_max = 0;
    churn_worst_ratio(std::make_unique<baseline::StarHealer>(),
                      workload::make_erdos_renyi(48, 0.12, seed_rng), 1, 120, 99,
                      &star_max);
    std::size_t xheal_max = 0;
    churn_worst_ratio(std::make_unique<core::XhealHealer>(core::XhealConfig{2, 7}),
                      workload::make_erdos_renyi(48, 0.12, seed_rng), 4, 120, 99,
                      &xheal_max);
    std::cout << "\nbaseline contrast: max degree under churn — star healer "
              << star_max << " vs xheal(kappa=4) " << xheal_max << "\n\n";

    bool pass = all_hold && star_max > xheal_max;
    return bench::verdict("T2.1",
                          pass,
                          "ratio bound holds for every kappa; star baseline max degree " +
                              std::to_string(star_max) + " vs xheal " +
                              std::to_string(xheal_max))
               ? 0
               : 1;
}
