// EXPERIMENT T2.2 (Theorem 2(2), Lemma 4): network stretch
//   dist(u, v, G_t) <= O(log n) * dist(u, v, G'_t).
//
// Deletion sequences on grid and path topologies (where detours are
// forced), n swept over powers of two; the measured max stretch is fitted
// against log2(n). A logarithmic claim means stretch/log2(n) stays bounded
// and the log-log exponent of stretch vs n stays well below a polynomial.
#include <cmath>
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

double measure_stretch(std::unique_ptr<core::Healer> healer, graph::Graph initial,
                       std::size_t deletions, std::uint64_t seed) {
    util::Rng rng(seed);
    core::HealingSession session(std::move(initial), std::move(healer));
    adversary::RandomDeletion attacker;
    for (std::size_t i = 0; i < deletions && session.current().node_count() > 8; ++i) {
        session.delete_node(attacker.pick(session, rng));
    }
    return core::sampled_stretch(session.current(), session.reference(), 12, rng);
}

}  // namespace

int main() {
    bench::experiment_header("T2.2",
                             "dist(u,v,G_t) <= O(log n) * dist(u,v,G'_t) (Lemma 4)");

    util::Table table({"initial", "n", "deletions", "xheal stretch", "stretch/log2(n)",
                       "line-baseline stretch"});

    std::vector<double> ns, stretches;
    double worst_normalized = 0.0;
    double line_worst = 0.0;

    for (std::size_t side : {6u, 8u, 12u, 16u, 23u}) {
        std::size_t n = side * side;
        std::size_t deletions = n / 4;
        double s = measure_stretch(
            std::make_unique<core::XhealHealer>(core::XhealConfig{2, 3}),
            workload::make_grid(side, side), deletions, 17);
        double line = measure_stretch(std::make_unique<baseline::LineHealer>(),
                                      workload::make_grid(side, side), deletions, 17);
        double logn = std::log2(static_cast<double>(n));
        table.row()
            .add("grid")
            .add(n)
            .add(deletions)
            .add(s, 2)
            .add(s / logn, 3)
            .add(line, 2);
        ns.push_back(static_cast<double>(n));
        stretches.push_back(s);
        worst_normalized = std::max(worst_normalized, s / logn);
        line_worst = std::max(line_worst, line);
    }

    for (std::size_t n : {64u, 128u, 256u, 512u}) {
        std::size_t deletions = n / 4;
        double s = measure_stretch(
            std::make_unique<core::XhealHealer>(core::XhealConfig{2, 5}),
            workload::make_cycle(n), deletions, 23);
        double line = measure_stretch(std::make_unique<baseline::LineHealer>(),
                                      workload::make_cycle(n), deletions, 23);
        double logn = std::log2(static_cast<double>(n));
        table.row().add("cycle").add(n).add(deletions).add(s, 2).add(s / logn, 3).add(line, 2);
        ns.push_back(static_cast<double>(n));
        stretches.push_back(s);
        worst_normalized = std::max(worst_normalized, s / logn);
        line_worst = std::max(line_worst, line);
    }
    table.print(std::cout);

    auto log_fit = util::fit_vs_log2(ns, stretches);
    auto poly_fit = util::fit_loglog(ns, stretches);
    std::cout << "\nstretch vs log2(n): slope " << util::format_double(log_fit.slope, 3)
              << " (r2 " << util::format_double(log_fit.r2, 2) << ")"
              << "; log-log exponent " << util::format_double(poly_fit.slope, 3) << "\n\n";

    // Shape: normalized stretch bounded by a small constant, sub-polynomial
    // growth (exponent well below 0.5).
    bool pass = worst_normalized <= 2.0 && poly_fit.slope < 0.5;
    return bench::verdict(
               "T2.2", pass,
               "max stretch / log2(n) = " + util::format_double(worst_normalized, 3) +
                   ", growth exponent " + util::format_double(poly_fit.slope, 3) +
                   " (logarithmic shape)")
               ? 0
               : 1;
}
