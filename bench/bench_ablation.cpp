// EXPERIMENT ABL — design-choice ablations called out in DESIGN.md:
//
//   ABL-1 (kappa): the paper's "implementation dependent" parameter trades
//         degree increase against expansion. Sweep d (kappa = 2d) under a
//         fixed attack and report expansion, degree ratio and repair cost.
//   ABL-2 (rebuild-after-half-loss): Section 5's w.h.p. maintenance rule.
//         Theorem 3 says incremental DELETEs preserve the distribution, so
//         the *average* expansion should match with the rule off — the rule
//         buys tail probability, paid for in rebuild work. We verify the
//         averages agree and report the cost.
//   ABL-3 (cloud topology): random H-graph vs deterministic constructions
//         (de Bruijn shuffle-exchange, Margulis) vs clique at equal size —
//         the extension the paper flags as an open question.
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "expander/deterministic.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

struct AttackOutcome {
    double final_h = 0.0;
    double max_degree_ratio = 0.0;
    double edges_per_deletion = 0.0;
    std::size_t rebuilds = 0;
};

AttackOutcome attack_with(core::XhealConfig config, std::uint64_t seed) {
    util::Rng rng(seed);
    graph::Graph initial = workload::make_random_regular(64, 6, rng);
    core::HealingSession session(initial,
                                 std::make_unique<core::XhealHealer>(config));
    adversary::ColoredDegreeDeletion attacker;
    std::size_t deletions = 28;
    for (std::size_t i = 0; i < deletions; ++i) {
        session.delete_node(attacker.pick(session, rng));
    }
    AttackOutcome out;
    out.final_h = spectral::edge_expansion_estimate(session.current());
    out.max_degree_ratio =
        core::degree_increase(session.current(), session.reference()).max_ratio;
    out.edges_per_deletion = static_cast<double>(session.totals().edges_added) /
                             static_cast<double>(deletions);
    out.rebuilds = session.totals().rebuilds;
    return out;
}

}  // namespace

int main() {
    bool all_pass = true;

    // ---- ABL-1: kappa sweep -------------------------------------------
    bench::experiment_header("ABL-1",
                             "kappa trades degree increase against expansion");
    util::Table t1({"d", "kappa", "final h~", "max deg ratio", "edges/deletion"});
    std::vector<double> hs, ratios;
    for (std::size_t d : {1u, 2u, 3u, 4u, 5u}) {
        auto out = attack_with(core::XhealConfig{d, 19, true}, 3);
        t1.row()
            .add(d)
            .add(2 * d)
            .add(out.final_h, 3)
            .add(out.max_degree_ratio, 2)
            .add(out.edges_per_deletion, 2);
        hs.push_back(out.final_h);
        ratios.push_back(out.max_degree_ratio);
    }
    t1.print(std::cout);
    std::cout << "\n";
    // Shape: expansion does not degrade as kappa grows, and the degree
    // ratio stays within the kappa-proportional bound (monotone-ish cost).
    bool abl1 = hs.back() >= hs.front() * 0.8 && ratios.front() <= ratios.back() + 2.0;
    all_pass &= bench::verdict("ABL-1", abl1,
                               "larger kappa buys equal-or-better expansion at "
                               "proportionally higher degree/repair cost");

    // ---- ABL-2: rebuild-after-half-loss --------------------------------
    bench::experiment_header(
        "ABL-2", "half-loss rebuild: same average expansion (Theorem 3), extra work "
                 "buys the w.h.p. tail");
    util::Table t2({"rebuild rule", "runs", "mean final h~", "min final h~",
                    "mean edges/deletion", "total rebuilds"});
    util::RunningStats h_on, h_off, cost_on, cost_off;
    std::size_t rebuilds_on = 0, rebuilds_off = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto on = attack_with(core::XhealConfig{2, 100 + seed, true}, seed);
        auto off = attack_with(core::XhealConfig{2, 100 + seed, false}, seed);
        h_on.add(on.final_h);
        h_off.add(off.final_h);
        cost_on.add(on.edges_per_deletion);
        cost_off.add(off.edges_per_deletion);
        rebuilds_on += on.rebuilds;
        rebuilds_off += off.rebuilds;
    }
    t2.row().add("on").add(h_on.count()).add(h_on.mean(), 3).add(h_on.min(), 3)
        .add(cost_on.mean(), 2).add(rebuilds_on);
    t2.row().add("off").add(h_off.count()).add(h_off.mean(), 3).add(h_off.min(), 3)
        .add(cost_off.mean(), 2).add(rebuilds_off);
    t2.print(std::cout);
    std::cout << "\n";
    bool abl2 = rebuilds_off == 0 &&
                h_off.mean() >= h_on.mean() * 0.75 && h_on.mean() >= h_off.mean() * 0.75;
    all_pass &= bench::verdict(
        "ABL-2", abl2,
        "average expansion matches with the rule off (Theorem 3's distribution "
        "preservation); the rule's rebuilds are pure tail insurance");

    // ---- ABL-3: cloud topology choice ----------------------------------
    bench::experiment_header(
        "ABL-3", "random H-graph vs deterministic constructions at equal size");
    util::Table t3({"topology", "n", "edges", "max deg", "h~", "lambda2",
                    "dynamic O(1) ops"});
    util::Rng rng(77);
    bool abl3 = true;
    for (std::size_t n : {25u, 64u, 121u}) {
        auto h_graph = workload::make_hgraph_graph(n, 3, rng);  // kappa = 6
        auto debruijn = expander::make_debruijn_graph(n);
        std::size_t m = n == 25 ? 5 : n == 64 ? 8 : 11;
        auto margulis = expander::make_margulis_expander(m);

        struct Row {
            const char* name;
            const graph::Graph* g;
            const char* dynamic;
        } rows[] = {{"hgraph(d=3)", &h_graph, "yes (Law-Siu)"},
                    {"debruijn", &debruijn, "no"},
                    {"margulis", &margulis, "no (square sizes only)"}};
        for (const auto& row : rows) {
            double h = spectral::edge_expansion_estimate(*row.g);
            double l2 = spectral::lambda2(*row.g);
            t3.row()
                .add(row.name)
                .add(row.g->node_count())
                .add(row.g->edge_count())
                .add(row.g->max_degree())
                .add(h, 3)
                .add(l2, 4)
                .add(row.dynamic);
            abl3 = abl3 && h > 0.3 && l2 > 0.03;
        }
    }
    t3.print(std::cout);
    std::cout << "\n";
    all_pass &= bench::verdict(
        "ABL-3", abl3,
        "all three constructions are usable expanders; only the H-graph "
        "supports the O(1) INSERT/DELETE Xheal needs — the deterministic "
        "alternative remains an open question, as the paper notes");

    return all_pass ? 0 : 1;
}
