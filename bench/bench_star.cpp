// EXPERIMENT STAR (Section 1 / Related Work motivating example): a star of
// n+1 nodes loses its center.
//
//   Tree-style repairs (Forgiving Tree / Forgiving Graph) pull expansion
//   down to O(1/n); Xheal's expander cloud keeps it >= a constant.
//
// We sweep n and fit log h vs log n: the tree baselines must show exponent
// ~ -1 (the O(1/n) decay) while Xheal's exponent stays ~ 0 (constant).
#include <iostream>

#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "core/xheal_healer.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

double healed_star_expansion(core::Healer& healer, std::size_t leaves) {
    graph::Graph g = workload::make_star(leaves);
    healer.on_delete(g, 0);
    return spectral::edge_expansion_estimate(g);
}

}  // namespace

int main() {
    bench::experiment_header(
        "STAR",
        "star-center deletion: tree repair drops h to O(1/n); Xheal keeps h constant");

    std::vector<std::size_t> sizes{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
    util::Table table({"leaves", "xheal h~", "forgiving-tree h~", "line h~", "cycle h~",
                       "xheal lambda2", "tree lambda2"});

    std::vector<double> ns, xheal_h, tree_h;
    for (std::size_t n : sizes) {
        core::XhealHealer xh(core::XhealConfig{3, 7});
        baseline::ForgivingTreeStyleHealer tree;
        baseline::LineHealer line;
        baseline::CycleHealer cycle;

        double hx = healed_star_expansion(xh, n);
        double ht = healed_star_expansion(tree, n);
        double hl = healed_star_expansion(line, n);
        double hc = healed_star_expansion(cycle, n);

        graph::Graph gx = workload::make_star(n);
        core::XhealHealer xh2(core::XhealConfig{3, 7});
        xh2.on_delete(gx, 0);
        graph::Graph gt = workload::make_star(n);
        baseline::ForgivingTreeStyleHealer tree2;
        tree2.on_delete(gt, 0);

        table.row()
            .add(n)
            .add(hx, 4)
            .add(ht, 4)
            .add(hl, 4)
            .add(hc, 4)
            .add(spectral::lambda2(gx), 4)
            .add(spectral::lambda2(gt), 4);
        ns.push_back(static_cast<double>(n));
        xheal_h.push_back(hx);
        tree_h.push_back(ht);
    }
    table.print(std::cout);

    auto xheal_fit = util::fit_loglog(ns, xheal_h);
    auto tree_fit = util::fit_loglog(ns, tree_h);
    std::cout << "\nlog-log slope of h vs n: xheal "
              << util::format_double(xheal_fit.slope, 3) << " (constant ~ 0), "
              << "forgiving-tree " << util::format_double(tree_fit.slope, 3)
              << " (O(1/n) ~ -1)\n";

    // Crossover factor at the largest size.
    double factor = xheal_h.back() / tree_h.back();
    std::cout << "at n=" << sizes.back() << ": xheal/tree expansion factor = "
              << util::format_double(factor, 1) << "x\n\n";

    bool pass = xheal_fit.slope > -0.2 && tree_fit.slope < -0.8 && factor > 50.0;
    return bench::verdict(
               "STAR", pass,
               "xheal h is flat (slope " + util::format_double(xheal_fit.slope, 2) +
                   "), tree h decays like 1/n (slope " +
                   util::format_double(tree_fit.slope, 2) + "), gap " +
                   util::format_double(factor, 0) + "x at n=4096")
               ? 0
               : 1;
}
