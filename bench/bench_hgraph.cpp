// EXPERIMENT T4 + T3 (Law-Siu, Theorems 3-4):
//   T4: a random 2d-regular H-graph has edge expansion Omega(d) w.h.p.;
//   T3: INSERT/DELETE churn preserves the uniform H-graph distribution —
//       a churned H-graph is statistically indistinguishable (expansion,
//       lambda2) from a freshly sampled one of the same size.
#include <iostream>

#include "bench_common.hpp"
#include "expander/hgraph.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

namespace {

graph::Graph project(const expander::HGraph& h) {
    graph::Graph g;
    for (graph::NodeId v : h.members_sorted()) g.add_node_with_id(v);
    for (const auto& [u, v] : h.edges()) g.add_black_edge(u, v);
    return g;
}

std::vector<graph::NodeId> ids(std::size_t n) {
    std::vector<graph::NodeId> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<graph::NodeId>(i));
    return out;
}

}  // namespace

int main() {
    bench::experiment_header(
        "T4", "random 2d-regular H-graph has edge expansion Omega(d) w.h.p.");

    // ---- Part 1: expansion vs d and n --------------------------------
    util::Rng rng(2024);
    util::Table t4({"n", "d", "kappa", "trials", "mean h~", "min h~", "h~/d (min)",
                    "disconnected"});
    bool t4_ok = true;
    for (std::size_t n : {16u, 64u, 256u}) {
        for (std::size_t d : {2u, 3u, 4u, 5u}) {
            util::RunningStats h_stats;
            std::size_t disconnected = 0;
            std::size_t trials = n <= 16 ? 40 : 20;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                expander::HGraph h(ids(n), d, rng);
                auto g = project(h);
                if (!graph::is_connected(g)) ++disconnected;
                h_stats.add(spectral::edge_expansion_estimate(g));
            }
            double ratio = h_stats.min() / static_cast<double>(d);
            double mean_ratio = h_stats.mean() / static_cast<double>(d);
            // Omega(d) shape with a modest constant (the theorem is
            // asymptotic in d; d=2 realizes a smaller constant, and the
            // sweep estimator biases downward).
            t4_ok = t4_ok && disconnected == 0 && ratio >= 0.2 && mean_ratio >= 0.3;
            t4.row()
                .add(n)
                .add(d)
                .add(2 * d)
                .add(trials)
                .add(h_stats.mean(), 3)
                .add(h_stats.min(), 3)
                .add(ratio, 3)
                .add(disconnected);
        }
    }
    t4.print(std::cout);
    std::cout << "\n";
    bool pass4 = bench::verdict(
        "T4", t4_ok, "all random H-graphs connected with min h >= ~0.3*d (Omega(d) shape)");

    // ---- Part 2 (T3): churn invariance --------------------------------
    bench::experiment_header(
        "T3", "H-graph INSERT/DELETE preserve the uniform distribution (churned == fresh)");

    util::Table t3({"n", "d", "fresh mean h (exact)", "churned mean h (exact)",
                    "fresh mean l2", "churned mean l2", "rel diff h"});
    bool t3_ok = true;
    for (std::size_t d : {2u, 3u}) {
        const std::size_t n = 14;  // exact expansion is feasible
        const std::size_t trials = 120;
        util::RunningStats fresh_h, churn_h, fresh_l2, churn_l2;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            expander::HGraph fresh(ids(n), d, rng);
            auto gf = project(fresh);
            fresh_h.add(spectral::edge_expansion_exact(gf));
            fresh_l2.add(spectral::lambda2(gf));

            // Churn: start larger, insert/delete repeatedly, land on n nodes.
            expander::HGraph churned(ids(n), d, rng);
            graph::NodeId next = static_cast<graph::NodeId>(n);
            for (int step = 0; step < 40; ++step) {
                if (step % 2 == 0) {
                    churned.insert(next++, rng);
                } else {
                    auto members = churned.members_sorted();
                    churned.remove(members[rng.index(members.size())]);
                }
            }
            auto gc = project(churned);
            churn_h.add(spectral::edge_expansion_exact(gc));
            churn_l2.add(spectral::lambda2(gc));
        }
        double rel = std::abs(fresh_h.mean() - churn_h.mean()) / fresh_h.mean();
        t3_ok = t3_ok && rel < 0.10;  // distributions match to within 10%
        t3.row()
            .add(n)
            .add(d)
            .add(fresh_h.mean(), 3)
            .add(churn_h.mean(), 3)
            .add(fresh_l2.mean(), 3)
            .add(churn_l2.mean(), 3)
            .add(rel, 3);
    }
    t3.print(std::cout);
    std::cout << "\n";
    bool pass3 = bench::verdict(
        "T3", t3_ok,
        "churned H-graphs match freshly sampled ones in mean expansion (<10% gap)");

    return pass4 && pass3 ? 0 : 1;
}
