// EXPERIMENT AMO (Section 5(c)): combining primary clouds is the costly
// repair path; the paper amortizes it by showing a combine of total size S
// requires Omega(S) prior cheap deletions. We drive the free-node-starving
// adversary (the worst case for this rule) through the scenario engine with
// a per-step connectivity probe and measure:
//   * combine frequency (combines per deletion) — must stay small;
//   * amortized combine mass (combined members per deletion) — must stay
//     bounded by a constant factor of kappa * avg-degree;
//   * amortized repair edges per deletion vs the kappa*(deg+2) bound.
#include <iostream>

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

int main() {
    bench::experiment_header(
        "AMO", "combine cost amortizes: O(kappa log n) amortized per deletion (Sec. 5)");

    util::Rng seed_rng(71);
    util::Table table({"n", "d", "deletions", "combines", "combines/deletion",
                       "combine-mass/deletion", "edges-added/deletion",
                       "kappa*(A(p)+2)", "connected"});
    bool all_ok = true;
    // combine frequency per n (averaged over d), to check it does not grow
    // with scale — the amortization signature.
    std::vector<double> combine_rates;

    for (std::size_t n : {48u, 96u, 192u}) {
        double rate_sum = 0.0;
        for (std::size_t d : {1u, 2u}) {
            graph::Graph initial =
                workload::make_erdos_renyi(n, 5.0 / static_cast<double>(n) + 0.02, seed_rng);

            scenario::ScenarioSpec spec;
            spec.name = "free-node-starvation";
            spec.seed = 29;
            spec.healer = {"xheal", {{"d", std::to_string(d)}, {"seed", "17"}}};
            spec.probes = {"connected"};
            spec.sample_every = 1;  // connectivity checked after every step
            scenario::PhaseSpec starve;
            starve.name = "starve";
            starve.steps = 3 * n / 4;
            starve.delete_fraction = 1.0;
            starve.min_nodes = 6;
            starve.deleter = {"bridge-hunter", {}};
            spec.phases.push_back(starve);

            scenario::ScenarioRunner runner(spec, std::move(initial));
            auto result = runner.run();
            const auto& session = runner.session();
            std::size_t kappa = runner.kappa();

            bool connected = true;
            for (const auto& sample : result.samples)
                connected = connected && sample.connected();

            double p = static_cast<double>(session.deletions());
            double combine_rate = static_cast<double>(session.totals().combines) / p;
            double combine_mass =
                static_cast<double>(session.totals().combine_members) / p;
            double edges_rate = static_cast<double>(session.totals().edges_added) / p;
            double budget = static_cast<double>(kappa) *
                            (session.average_deleted_black_degree() + 2.0);

            // The amortization claim: even under the starving adversary the
            // per-deletion averages stay within a small constant of the
            // kappa*(A(p)+2) budget — individual combines are expensive,
            // but their mass amortizes.
            bool ok = connected && edges_rate <= 3.0 * budget &&
                      combine_mass <= 2.0 * budget;
            all_ok = all_ok && ok;
            rate_sum += combine_rate;
            table.row()
                .add(n)
                .add(d)
                .add(session.deletions())
                .add(session.totals().combines)
                .add(combine_rate, 3)
                .add(combine_mass, 2)
                .add(edges_rate, 2)
                .add(budget, 2)
                .add(connected);
        }
        combine_rates.push_back(rate_sum / 2.0);
    }
    table.print(std::cout);

    // Amortization signature: combine frequency must not grow with n.
    bool rate_shape = combine_rates.back() <= combine_rates.front() + 0.05;
    std::cout << "\ncombine rate by n: ";
    for (double r : combine_rates) std::cout << util::format_double(r, 3) << " ";
    std::cout << (rate_shape ? "(non-increasing: amortization holds)" : "(GROWING)")
              << "\n\n";
    all_ok = all_ok && rate_shape;

    return bench::verdict(
               "AMO", all_ok,
               "per-deletion repair mass stays within a constant of the "
               "kappa*(A(p)+2) budget and combine frequency does not grow with n, "
               "even under the free-node-starving adversary")
               ? 0
               : 1;
}
