// EXPERIMENT AMO (Section 5(c)): combining primary clouds is the costly
// repair path; the paper amortizes it by showing a combine of total size S
// requires Omega(S) prior cheap deletions. We drive the free-node-starving
// adversary (the worst case for this rule) and measure:
//   * combine frequency (combines per deletion) — must stay small;
//   * amortized combine mass (combined members per deletion) — must stay
//     bounded by a constant factor of kappa * avg-degree;
//   * amortized repair edges per deletion vs the kappa*(deg+2) bound.
#include <iostream>

#include "adversary/adversary.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace xheal;

int main() {
    bench::experiment_header(
        "AMO", "combine cost amortizes: O(kappa log n) amortized per deletion (Sec. 5)");

    util::Rng seed_rng(71);
    util::Table table({"n", "d", "deletions", "combines", "combines/deletion",
                       "combine-mass/deletion", "edges-added/deletion",
                       "kappa*(A(p)+2)", "connected"});
    bool all_ok = true;
    // combine frequency per n (averaged over d), to check it does not grow
    // with scale — the amortization signature.
    std::vector<double> combine_rates;

    for (std::size_t n : {48u, 96u, 192u}) {
        double rate_sum = 0.0;
        for (std::size_t d : {1u, 2u}) {
            graph::Graph initial =
                workload::make_erdos_renyi(n, 5.0 / static_cast<double>(n) + 0.02, seed_rng);
            auto healer = std::make_unique<core::XhealHealer>(core::XhealConfig{d, 17});
            const auto* registry = &healer->registry();
            std::size_t kappa = healer->kappa();
            core::HealingSession session(std::move(initial), std::move(healer));

            adversary::BridgeHunterDeletion hunter(registry);
            util::Rng rng(29);
            std::size_t deletions = 3 * n / 4;
            bool connected = true;
            for (std::size_t i = 0; i < deletions && session.current().node_count() > 6;
                 ++i) {
                session.delete_node(hunter.pick(session, rng));
                connected = connected && graph::is_connected(session.current());
            }
            double p = static_cast<double>(session.deletions());
            double combine_rate = static_cast<double>(session.totals().combines) / p;
            double combine_mass =
                static_cast<double>(session.totals().combine_members) / p;
            double edges_rate = static_cast<double>(session.totals().edges_added) / p;
            double budget = static_cast<double>(kappa) *
                            (session.average_deleted_black_degree() + 2.0);

            // The amortization claim: even under the starving adversary the
            // per-deletion averages stay within a small constant of the
            // kappa*(A(p)+2) budget — individual combines are expensive,
            // but their mass amortizes.
            bool ok = connected && edges_rate <= 3.0 * budget &&
                      combine_mass <= 2.0 * budget;
            all_ok = all_ok && ok;
            rate_sum += combine_rate;
            table.row()
                .add(n)
                .add(d)
                .add(session.deletions())
                .add(session.totals().combines)
                .add(combine_rate, 3)
                .add(combine_mass, 2)
                .add(edges_rate, 2)
                .add(budget, 2)
                .add(connected);
        }
        combine_rates.push_back(rate_sum / 2.0);
    }
    table.print(std::cout);

    // Amortization signature: combine frequency must not grow with n.
    bool rate_shape = combine_rates.back() <= combine_rates.front() + 0.05;
    std::cout << "\ncombine rate by n: ";
    for (double r : combine_rates) std::cout << util::format_double(r, 3) << " ";
    std::cout << (rate_shape ? "(non-increasing: amortization holds)" : "(GROWING)")
              << "\n\n";
    all_ok = all_ok && rate_shape;

    return bench::verdict(
               "AMO", all_ok,
               "per-deletion repair mass stays within a constant of the "
               "kappa*(A(p)+2) budget and combine frequency does not grow with n, "
               "even under the free-node-starving adversary")
               ? 0
               : 1;
}
